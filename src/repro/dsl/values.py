"""Architecture-specific DSL data types: EITScalar, EITVector, EITMatrix.

These mirror the paper's Scala types (section 3.1).  Every operation on
them simultaneously

* computes the concrete complex-valued result (functional semantics —
  the debugging run of figure 2), and
* records an operation node plus result data node in the active trace's
  IR graph.

Conversions between the types are handled implicitly where the paper's
DSL does so: numbers become scalar inputs, a matrix is just four row
vectors (matrix *data* never reaches the IR, section 3.2.1), and
building a vector from four scalars introduces a ``merge`` node
(figures 3 and 5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.isa import OpCategory
from repro.dsl.semantics import VECTOR_WIDTH, apply_op, as_scalar, as_vector
from repro.dsl.trace import DSLError, current_trace

Number = Union[int, float, complex]


def _wrap_scalar(x: Union["EITScalar", Number], name: Optional[str] = None) -> "EITScalar":
    if isinstance(x, EITScalar):
        return x
    return EITScalar(x, name=name)


class EITScalar:
    """A complex scalar living in the accelerator/scalar domain."""

    __slots__ = ("value", "node")

    def __init__(self, value: Number, name: Optional[str] = None, _node=None):
        self.value = as_scalar(value)
        if _node is not None:
            self.node = _node
        else:
            self.node = current_trace().input_data(
                OpCategory.SCALAR_DATA, self.value, name=name
            )

    @staticmethod
    def _from_op(op_name: str, operands: Sequence["EITScalar"], **attrs) -> "EITScalar":
        t = current_trace()
        value = apply_op(op_name, [o.value for o in operands], attrs)
        _, out = t.operation(
            op_name,
            [o.node for o in operands],
            value,
            OpCategory.SCALAR_DATA,
            **attrs,
        )
        return EITScalar.__new__(EITScalar)._init_traced(value, out)

    def _init_traced(self, value: complex, node) -> "EITScalar":
        self.value = value
        self.node = node
        return self

    # -- arithmetic (scalar accelerator) ---------------------------------
    def __add__(self, other) -> "EITScalar":
        return EITScalar._from_op("s_add", [self, _wrap_scalar(other)])

    def __sub__(self, other) -> "EITScalar":
        return EITScalar._from_op("s_sub", [self, _wrap_scalar(other)])

    def __mul__(self, other) -> "EITScalar":
        return EITScalar._from_op("s_mul", [self, _wrap_scalar(other)])

    def __truediv__(self, other) -> "EITScalar":
        return EITScalar._from_op("s_div", [self, _wrap_scalar(other)])

    def sqrt(self) -> "EITScalar":
        return EITScalar._from_op("s_sqrt", [self])

    def rsqrt(self) -> "EITScalar":
        """Reciprocal square root — the MGS normalization primitive."""
        return EITScalar._from_op("s_rsqrt", [self])

    def recip(self) -> "EITScalar":
        return EITScalar._from_op("s_recip", [self])

    def cordic_rot(self, angle) -> "EITScalar":
        return EITScalar._from_op("s_cordic_rot", [self, _wrap_scalar(angle)])

    def cordic_vec(self) -> "EITScalar":
        return EITScalar._from_op("s_cordic_vec", [self])

    def __repr__(self) -> str:
        return f"EITScalar({self.value})"


class EITVector:
    """A four-element complex vector, the architecture's native datum.

    Constructors:

    * ``EITVector(1, 2, 3, 4)`` — an application input (literal values);
    * ``EITVector(s0, s1, s2, s3)`` with :class:`EITScalar` arguments —
      a ``merge`` operation packing computed scalars (listing 1 line 18);
    * internal: results of vector operations.
    """

    __slots__ = ("values", "node")

    def __init__(self, *elements, name: Optional[str] = None, _values=None, _node=None):
        if _node is not None:
            self.values = _values
            self.node = _node
            return
        if len(elements) == 1 and isinstance(elements[0], (list, tuple)):
            elements = tuple(elements[0])
        if len(elements) != VECTOR_WIDTH:
            raise DSLError(
                f"EITVector takes {VECTOR_WIDTH} elements, got {len(elements)}"
            )
        if any(isinstance(e, EITScalar) for e in elements):
            # Merge computed scalars into a vector -> merge node.
            scalars = [_wrap_scalar(e) for e in elements]
            t = current_trace()
            value = apply_op("merge", [s.value for s in scalars])
            _, out = t.operation(
                "merge",
                [s.node for s in scalars],
                value,
                OpCategory.VECTOR_DATA,
                result_name=name,
            )
            self.values = value
            self.node = out
        else:
            self.values = as_vector(elements)
            self.node = current_trace().input_data(
                OpCategory.VECTOR_DATA, self.values, name=name
            )

    @staticmethod
    def _traced(values, node) -> "EITVector":
        v = EITVector.__new__(EITVector)
        v.values = values
        v.node = node
        return v

    @staticmethod
    def _from_op(op_name: str, operands: Sequence[object], **attrs):
        """Run+trace an op over a flat operand list (vectors/scalars)."""
        t = current_trace()
        values = [
            o.values if isinstance(o, EITVector) else o.value for o in operands
        ]
        value = apply_op(op_name, values, attrs)
        nodes = [o.node for o in operands]  # type: ignore[union-attr]
        from repro.arch.isa import lookup_op

        result_scalar = lookup_op(op_name).result_is_scalar
        cat = OpCategory.SCALAR_DATA if result_scalar else OpCategory.VECTOR_DATA
        _, out = t.operation(op_name, nodes, value, cat, **attrs)
        if result_scalar:
            return EITScalar.__new__(EITScalar)._init_traced(value, out)
        return EITVector._traced(value, out)

    # -- element access ----------------------------------------------------
    def __getitem__(self, i: int) -> EITScalar:
        if not 0 <= i < VECTOR_WIDTH:
            raise IndexError(i)
        t = current_trace()
        value = apply_op("index", [self.values], {"i": i})
        _, out = t.operation(
            "index", [self.node], value, OpCategory.SCALAR_DATA, i=i
        )
        return EITScalar.__new__(EITScalar)._init_traced(value, out)

    # -- vector core operations ---------------------------------------------
    def __add__(self, other: "EITVector") -> "EITVector":
        return EITVector._from_op("v_add", [self, other])

    def __sub__(self, other: "EITVector") -> "EITVector":
        return EITVector._from_op("v_sub", [self, other])

    def __mul__(self, other: "EITVector") -> "EITVector":
        """Element-wise complex multiplication."""
        return EITVector._from_op("v_mul", [self, other])

    def dotP(self, other: "EITVector") -> EITScalar:
        """Complex dot product (the paper's ``v_dotP``)."""
        return EITVector._from_op("v_dotP", [self, other])

    def cdotP(self, other: "EITVector") -> EITScalar:
        """Conjugated dot product ⟨self, conj(other)⟩ (MGS projections)."""
        return EITVector._from_op("v_cdotP", [self, other])

    def scale(self, s: Union[EITScalar, Number]) -> "EITVector":
        return EITVector._from_op("v_scale", [self, _wrap_scalar(s)])

    def axpy(self, a: Union[EITScalar, Number], y: "EITVector") -> "EITVector":
        """``a * self + y`` fused multiply-add."""
        return EITVector._from_op("v_axpy", [_wrap_scalar(a), self, y])

    def squsum(self) -> EITScalar:
        """Sum of squared magnitudes (figure 5's ``v_squsum``)."""
        return EITVector._from_op("v_squsum", [self])

    def conj(self) -> "EITVector":
        return EITVector._from_op("v_conj", [self])

    def hermit(self) -> "EITVector":
        """Hermitian pre-processing transform (pre-stage, figure 6)."""
        return EITVector._from_op("v_hermit", [self])

    def mask(self, m: "EITVector") -> "EITVector":
        return EITVector._from_op("v_mask", [self, m])

    def sort(self) -> "EITVector":
        """Post-processing sort (by magnitude, figure 6)."""
        return EITVector._from_op("v_sort", [self])

    def shift(self, k: Union[EITScalar, Number]) -> "EITVector":
        return EITVector._from_op("v_shift", [self, _wrap_scalar(k)])

    def neg(self) -> "EITVector":
        return EITVector._from_op("v_neg", [self])

    def __repr__(self) -> str:
        return f"EITVector{self.values}"


class EITMatrix:
    """Four row vectors; expanded to vector nodes in the IR (section 3.2.1)."""

    __slots__ = ("rows",)

    def __init__(self, *rows: EITVector):
        if len(rows) == 1 and isinstance(rows[0], (list, tuple)):
            rows = tuple(rows[0])
        if len(rows) != VECTOR_WIDTH:
            raise DSLError(f"EITMatrix takes {VECTOR_WIDTH} rows, got {len(rows)}")
        if not all(isinstance(r, EITVector) for r in rows):
            raise DSLError("EITMatrix rows must be EITVector")
        self.rows: Tuple[EITVector, ...] = tuple(rows)

    # Scala-style row access: ``A(i)``
    def __call__(self, i: int) -> EITVector:
        return self.rows[i]

    def __getitem__(self, i: int) -> EITVector:
        return self.rows[i]

    def col(self, j: int) -> EITVector:
        """Column access, served by the banked memory's access patterns.

        Listing 1 accesses "each jth vector in A as a column vector";
        in the IR this is a ``col_access`` node over the four rows.
        """
        t = current_trace()
        value = apply_op("col_access", [r.values for r in self.rows], {"j": j})
        _, out = t.operation(
            "col_access", [r.node for r in self.rows], value,
            OpCategory.VECTOR_DATA, j=j,
        )
        return EITVector._traced(value, out)

    def _matrix_result(self, op_name: str, operands_nodes, operand_values, **attrs) -> "EITMatrix":
        t = current_trace()
        row_values = apply_op(op_name, operand_values, attrs)
        _, outs = t.matrix_operation(op_name, operands_nodes, row_values, **attrs)
        return EITMatrix(
            *[EITVector._traced(v, n) for v, n in zip(row_values, outs)]
        )

    def __add__(self, other: "EITMatrix") -> "EITMatrix":
        nodes = [r.node for r in self.rows] + [r.node for r in other.rows]
        vals = [r.values for r in self.rows] + [r.values for r in other.rows]
        return self._matrix_result("m_add", nodes, vals)

    def __sub__(self, other: "EITMatrix") -> "EITMatrix":
        nodes = [r.node for r in self.rows] + [r.node for r in other.rows]
        vals = [r.values for r in self.rows] + [r.values for r in other.rows]
        return self._matrix_result("m_sub", nodes, vals)

    def __mul__(self, other: "EITMatrix") -> "EITMatrix":
        """Element-wise matrix multiply (Hadamard), four lanes at once."""
        nodes = [r.node for r in self.rows] + [r.node for r in other.rows]
        vals = [r.values for r in self.rows] + [r.values for r in other.rows]
        return self._matrix_result("m_mul", nodes, vals)

    def scale(self, s: Union[EITScalar, Number]) -> "EITMatrix":
        sc = _wrap_scalar(s)
        nodes = [r.node for r in self.rows] + [sc.node]
        vals = [r.values for r in self.rows] + [sc.value]
        return self._matrix_result("m_scale", nodes, vals)

    def squsum(self) -> EITVector:
        """Figure 4: ``A.m_squsum`` — one vector of per-row square sums."""
        t = current_trace()
        value = apply_op("m_squsum", [r.values for r in self.rows])
        _, out = t.operation(
            "m_squsum",
            [r.node for r in self.rows],
            value,
            OpCategory.VECTOR_DATA,
        )
        return EITVector._traced(value, out)

    def hermitian(self) -> "EITMatrix":
        return self._matrix_result(
            "m_hermitian",
            [r.node for r in self.rows],
            [r.values for r in self.rows],
        )

    def __repr__(self) -> str:
        return "EITMatrix(\n  " + ",\n  ".join(repr(r) for r in self.rows) + "\n)"
