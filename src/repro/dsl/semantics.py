"""Functional semantics of every architecture operation.

The DSL uses these to compute concrete values while tracing (the paper's
"this run can be used for debugging as well"), and the cycle-accurate
simulator uses the very same functions to execute generated machine
code — which is what lets integration tests assert that a scheduled,
memory-allocated, code-generated program computes exactly what the DSL
program computed.

Value representation: scalars are Python ``complex``; vectors are
4-tuples of ``complex``.  Matrix-valued operations return tuples of row
vectors.
"""

from __future__ import annotations

import cmath
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

Scalar = complex
Vector = Tuple[complex, complex, complex, complex]
Value = Union[Scalar, Vector, Tuple[Vector, ...]]

VECTOR_WIDTH = 4


def as_scalar(v: Any) -> Scalar:
    return complex(v)


def as_vector(v: Sequence[Any]) -> Vector:
    t = tuple(complex(x) for x in v)
    if len(t) != VECTOR_WIDTH:
        raise ValueError(f"vector must have {VECTOR_WIDTH} elements, got {len(t)}")
    return t  # type: ignore[return-value]


def _ew(f, a: Vector, b: Vector) -> Vector:
    return tuple(f(x, y) for x, y in zip(a, b))  # type: ignore[return-value]


def _sort_key(z: complex) -> Tuple[float, float, float]:
    return (abs(z), z.real, z.imag)


def _rotate(v: Vector, k: int) -> Vector:
    k %= VECTOR_WIDTH
    return v[k:] + v[:k]  # type: ignore[return-value]


def apply_op(
    name: str,
    operands: Sequence[Value],
    attrs: Optional[Mapping[str, Any]] = None,
) -> Value:
    """Evaluate one operation on concrete operand values."""
    attrs = attrs or {}
    o = operands

    # -- vector core ----------------------------------------------------
    if name == "v_add":
        return _ew(lambda x, y: x + y, o[0], o[1])
    if name == "v_sub":
        return _ew(lambda x, y: x - y, o[0], o[1])
    if name == "v_mul":
        return _ew(lambda x, y: x * y, o[0], o[1])
    if name == "v_dotP":
        return sum(x * y for x, y in zip(o[0], o[1]))
    if name == "v_cdotP":
        return sum(x * y.conjugate() for x, y in zip(o[0], o[1]))
    if name == "v_scale":
        s = o[1]
        return tuple(x * s for x in o[0])
    if name == "v_axpy":  # (a, x, y) -> a*x + y, a scalar
        a, x, y = o
        return tuple(a * xi + yi for xi, yi in zip(x, y))
    if name == "v_axmy":  # (a, x, y) -> y - a*x, a scalar
        a, x, y = o
        return tuple(yi - a * xi for xi, yi in zip(x, y))
    if name == "v_squsum":
        return complex(sum(abs(x) ** 2 for x in o[0]), 0.0)
    if name == "v_conj" or name == "v_hermit":
        return tuple(x.conjugate() for x in o[0])
    if name == "v_mask":
        return _ew(lambda x, m: x if m != 0 else 0j, o[0], o[1])
    if name == "v_sort":
        return tuple(sorted(o[0], key=_sort_key))
    if name == "v_shift":  # (v, k) rotate left by int(k.real)
        return _rotate(o[0], int(o[1].real))
    if name == "v_neg":
        return tuple(-x for x in o[0])

    # -- matrix variants (operands laid out one 4-row group per operand) --
    if name in ("m_add", "m_sub", "m_mul"):
        base = {"m_add": "v_add", "m_sub": "v_sub", "m_mul": "v_mul"}[name]
        rows_a, rows_b = o[:4], o[4:8]
        return tuple(apply_op(base, (a, b)) for a, b in zip(rows_a, rows_b))
    if name == "m_scale":
        rows, s = o[:4], o[4]
        return tuple(apply_op("v_scale", (r, s)) for r in rows)
    if name == "m_squsum":
        return as_vector([apply_op("v_squsum", (r,)) for r in o[:4]])
    if name == "m_vmul":  # (row0..row3, x) -> [dotP(row_k, x)]
        rows, x = o[:4], o[4]
        return as_vector([apply_op("v_dotP", (r, x)) for r in rows])
    if name == "m_hermitian":
        rows = o[:4]
        return tuple(
            tuple(rows[r][c].conjugate() for r in range(4)) for c in range(4)
        )

    # -- scalar accelerator ------------------------------------------------
    if name == "s_sqrt":
        return cmath.sqrt(o[0])
    if name == "s_rsqrt":
        return 1.0 / cmath.sqrt(o[0])
    if name == "s_div":
        return o[0] / o[1]
    if name == "s_recip":
        return 1.0 / o[0]
    if name == "s_add":
        return o[0] + o[1]
    if name == "s_sub":
        return o[0] - o[1]
    if name == "s_mul":
        return o[0] * o[1]
    if name == "s_cordic_rot":  # rotate o[0] by angle Re(o[1])
        return o[0] * cmath.exp(1j * o[1].real)
    if name == "s_cordic_vec":  # vectoring: (magnitude, phase) packed
        return complex(abs(o[0]), cmath.phase(o[0]) if o[0] != 0 else 0.0)

    # -- index / merge ------------------------------------------------------
    if name == "index":
        return o[0][attrs["i"]]
    if name == "merge":
        return as_vector(list(o))
    if name == "col_access":
        j = attrs["j"]
        return as_vector([row[j] for row in o])

    raise KeyError(f"no semantics for operation {name!r}")


def eval_expr(expr, operands: Sequence[Value]) -> Value:
    """Evaluate a merged-node expression tree (see repro.ir.transform).

    Leaves are integers indexing ``operands``; inner nodes are
    ``(op_name, children)``.
    """
    if isinstance(expr, int):
        return operands[expr]
    name, children = expr
    return apply_op(name, [eval_expr(c, operands) for c in children])
