"""Python-embedded DSL for the EIT architecture (section 3.1).

The paper embeds its DSL in Scala; this reproduction embeds the same
language in Python (a documented substitution — see DESIGN.md).  The
programmer manipulates architecture-specific data types —
:class:`EITScalar`, :class:`EITVector`, :class:`EITMatrix` — and every
operation both *computes* (complex-valued functional semantics, so DSL
programs are debuggable by running them) and *traces* into the IR
dataflow graph.

Listing 1 of the paper, ported:

>>> from repro.dsl import EITMatrix, EITVector, trace
>>> with trace("matmul") as t:
...     v1 = EITVector(1, 2, 3, 4)
...     v2 = EITVector(2, 3, 4, 5)
...     v3 = EITVector(3, 4, 5, 6)
...     v4 = EITVector(4, 5, 6, 7)
...     A = EITMatrix(v1, v2, v3, v4)
...     rows = []
...     for i in range(4):
...         scalars = [A(i).dotP(A.col(j)) for j in range(4)]
...         rows.append(EITVector(*scalars))
>>> graph = t.graph
>>> graph.n_nodes() > 0
True
"""

from repro.dsl.trace import TraceContext, current_trace, trace
from repro.dsl.values import EITMatrix, EITScalar, EITVector
from repro.dsl.semantics import apply_op, eval_expr

__all__ = [
    "EITMatrix",
    "EITScalar",
    "EITVector",
    "TraceContext",
    "apply_op",
    "current_trace",
    "eval_expr",
    "trace",
]
