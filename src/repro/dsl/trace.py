"""Trace context: running a DSL program builds its IR graph.

Mirrors the paper's flow (figure 2): "When the application written in
the DSL is run, an intermediate representation of the application is
generated.  This run can be used for debugging as well."
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.arch.isa import OpCategory, lookup_op
from repro.ir.graph import DataNode, Graph, OpNode

_state = threading.local()


class DSLError(RuntimeError):
    """Misuse of the DSL (e.g. values created outside a trace)."""


def current_trace() -> "TraceContext":
    ctx = getattr(_state, "stack", None)
    if not ctx:
        raise DSLError(
            "no active trace: create DSL values inside `with trace(...):`"
        )
    return ctx[-1]


class TraceContext:
    """Builds the IR graph as a DSL program executes."""

    def __init__(self, name: str = "kernel"):
        self.graph = Graph(name)

    # -- context management ------------------------------------------------
    def __enter__(self) -> "TraceContext":
        stack = getattr(_state, "stack", None)
        if stack is None:
            stack = _state.stack = []
        stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _state.stack.pop()

    # -- node creation ------------------------------------------------------
    def input_data(
        self, category: OpCategory, value: Any, name: Optional[str] = None
    ) -> DataNode:
        return self.graph.add_data(category, name=name, value=value)

    def operation(
        self,
        op_name: str,
        operands: Sequence[DataNode],
        result_value: Any,
        result_category: OpCategory,
        name: Optional[str] = None,
        result_name: Optional[str] = None,
        **attrs: Any,
    ) -> Tuple[OpNode, DataNode]:
        """Add one operation node and its single result data node."""
        op = lookup_op(op_name)
        if len(operands) != op.arity:
            raise DSLError(
                f"{op_name} expects {op.arity} operands, got {len(operands)}"
            )
        node = self.graph.add_op(op, name=name, **attrs)
        for d in operands:
            self.graph.add_edge(d, node)
        out = self.graph.add_data(
            result_category,
            name=result_name or f"{node.name}.out",
            value=result_value,
        )
        self.graph.add_edge(node, out)
        return node, out

    def matrix_operation(
        self,
        op_name: str,
        operands: Sequence[DataNode],
        row_values: Sequence[Any],
        name: Optional[str] = None,
        **attrs: Any,
    ) -> Tuple[OpNode, List[DataNode]]:
        """Add a matrix operation with one vector data node per result row."""
        op = lookup_op(op_name)
        node = self.graph.add_op(op, name=name, **attrs)
        for d in operands:
            self.graph.add_edge(d, node)
        outs = []
        for i, rv in enumerate(row_values):
            out = self.graph.add_data(
                OpCategory.VECTOR_DATA,
                name=f"{node.name}.row{i}",
                value=rv,
            )
            self.graph.add_edge(node, out)
            outs.append(out)
        return node, outs

    # -- outputs & linting -------------------------------------------------
    def output(self, *values: Any) -> None:
        """Declare kernel outputs: the values the optimizer must keep.

        Accepts DSL values (``EITScalar``/``EITVector`` — anything with
        a ``.node``), ``EITMatrix`` (declares all four rows) or raw
        :class:`~repro.ir.graph.DataNode` objects.  Declaring outputs
        turns on the precise dead-result analyses: liveness roots
        shrink from "every consumer-less datum" to exactly these nodes,
        so dead-code elimination and the ``DFA602`` trace lint can tell
        an abandoned intermediate from a genuine result.
        """
        for value in values:
            rows = getattr(value, "rows", None)
            if rows is not None:  # EITMatrix: declare each row vector
                self.output(*rows)
                continue
            node = getattr(value, "node", value)
            if not isinstance(node, DataNode):
                raise DSLError(
                    f"cannot declare {value!r} as an output: expected a "
                    f"DSL value or a data node"
                )
            node.attrs["output"] = True

    def lint(self) -> Any:
        """DSL-level lint of the trace so far (``DFA6xx`` findings).

        Returns the :class:`~repro.analysis.diagnostics.DiagnosticReport`
        of :func:`repro.analysis.lint_trace`: use-before-def operands
        (``DFA604``) and — once outputs are declared — results that are
        computed but never used (``DFA602``).
        """
        from repro.analysis.dataflow import lint_trace

        return lint_trace(self.graph)


def trace(name: str = "kernel") -> TraceContext:
    """Create a trace context: ``with trace("qrd") as t: ... t.graph``."""
    return TraceContext(name)
